//! Manifest regression diff: the `fare-report diff` CI gate.
//!
//! Compares every counter, timer, epoch record, heatmap total and bench
//! number of two [`RunManifest`]s under a relative tolerance. A value
//! present on only one side is compared against 0 (counters that never
//! fired are omitted from manifests by design, so "missing" and "zero"
//! are the same event count). Run/seed/config mismatches are reported
//! as notes, not regressions — diffing two different seeds is a
//! legitimate exploratory use; the CI gate passes identical configs.

use fare_obs::RunManifest;
use std::collections::BTreeMap;

/// Diff configuration.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Relative tolerance: a line passes when
    /// `|candidate - baseline| <= tolerance * |baseline|`
    /// (so `0.0` demands exact equality, and any change away from a
    /// zero baseline beyond exact equality fails).
    pub tolerance: f64,
    /// Skip `timer.ns` lines (wall-clock runs make them incomparable;
    /// fixed-clock runs keep them exact).
    pub ignore_timer_ns: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            tolerance: 0.0,
            ignore_timer_ns: false,
        }
    }
}

/// One compared quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffLine {
    /// Quantity kind: `counter`, `timer.count`, `timer.ns`,
    /// `epoch.loss`, `epoch.train_accuracy`, `epoch.test_accuracy`,
    /// `epoch.count`, `heatmap.<metric>`, `bench`.
    pub kind: String,
    /// Quantity name (counter name, timer name, `epoch[3]`, …).
    pub name: String,
    pub baseline: f64,
    pub candidate: f64,
    /// Within tolerance?
    pub within: bool,
}

impl DiffLine {
    fn check(kind: &str, name: &str, baseline: f64, candidate: f64, tol: f64) -> DiffLine {
        let within = (candidate - baseline).abs() <= tol * baseline.abs();
        DiffLine {
            kind: kind.to_string(),
            name: name.to_string(),
            baseline,
            candidate,
            within,
        }
    }

    /// `candidate` relative to `baseline`, as a percentage; `None` when
    /// the baseline is zero (the zero-baseline percentage edge case).
    pub fn rel_pct(&self) -> Option<f64> {
        if self.baseline == 0.0 {
            None
        } else {
            Some((self.candidate - self.baseline) / self.baseline.abs() * 100.0)
        }
    }
}

/// The full diff outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Every compared quantity, manifest order.
    pub lines: Vec<DiffLine>,
    /// Identity mismatches (run name, seed, config) — informational.
    pub notes: Vec<String>,
}

impl DiffReport {
    /// Lines beyond tolerance.
    pub fn regressions(&self) -> usize {
        self.lines.iter().filter(|l| !l.within).count()
    }

    /// True when every line is within tolerance — the gate condition.
    pub fn ok(&self) -> bool {
        self.regressions() == 0
    }

    /// Markdown table; `only_changed` drops lines with zero delta.
    pub fn to_markdown(&self, only_changed: bool) -> String {
        let mut out = String::new();
        for note in &self.notes {
            out.push_str(&format!("> note: {note}\n"));
        }
        if !self.notes.is_empty() {
            out.push('\n');
        }
        out.push_str("| quantity | baseline | candidate | delta | status |\n");
        out.push_str("|---|---:|---:|---:|---|\n");
        let mut shown = 0usize;
        for l in &self.lines {
            let delta = l.candidate - l.baseline;
            if only_changed && delta == 0.0 {
                continue;
            }
            shown += 1;
            let delta_text = match l.rel_pct() {
                Some(pct) => format!("{delta:+.6} ({pct:+.2}%)"),
                None if delta == 0.0 => "0".to_string(),
                None => format!("{delta:+.6} (new)"),
            };
            out.push_str(&format!(
                "| {} `{}` | {} | {} | {} | {} |\n",
                l.kind,
                l.name,
                trim_float(l.baseline),
                trim_float(l.candidate),
                delta_text,
                if l.within { "ok" } else { "REGRESSION" }
            ));
        }
        if shown == 0 {
            out.push_str("| *(no differences)* | | | | |\n");
        }
        out.push_str(&format!(
            "\n{} quantities compared, {} beyond tolerance\n",
            self.lines.len(),
            self.regressions()
        ));
        out
    }
}

fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// Union of names from two `(name, value)` lists, baseline order first,
/// candidate-only names after (missing side reads as 0).
fn union_names(a: &[(String, f64)], b: &[(String, f64)]) -> Vec<(String, f64, f64)> {
    let bmap: BTreeMap<&str, f64> = b.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let amap: BTreeMap<&str, f64> = a.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let mut out: Vec<(String, f64, f64)> = a
        .iter()
        .map(|(n, v)| (n.clone(), *v, bmap.get(n.as_str()).copied().unwrap_or(0.0)))
        .collect();
    for (n, v) in b {
        if !amap.contains_key(n.as_str()) {
            out.push((n.clone(), 0.0, *v));
        }
    }
    out
}

/// Diff `candidate` against `baseline`.
pub fn diff(baseline: &RunManifest, candidate: &RunManifest, opts: &DiffOptions) -> DiffReport {
    let tol = opts.tolerance;
    let mut lines = Vec::new();
    let mut notes = Vec::new();

    if baseline.run != candidate.run {
        notes.push(format!("run: {:?} vs {:?}", baseline.run, candidate.run));
    }
    if baseline.seed != candidate.seed {
        notes.push(format!("seed: {} vs {}", baseline.seed, candidate.seed));
    }
    if baseline.config != candidate.config {
        notes.push("config differs".to_string());
    }

    let a: Vec<(String, f64)> = baseline
        .counters
        .iter()
        .map(|c| (c.name.clone(), c.value as f64))
        .collect();
    let b: Vec<(String, f64)> = candidate
        .counters
        .iter()
        .map(|c| (c.name.clone(), c.value as f64))
        .collect();
    for (name, base, cand) in union_names(&a, &b) {
        lines.push(DiffLine::check("counter", &name, base, cand, tol));
    }

    let a: Vec<(String, f64)> = baseline
        .timers
        .iter()
        .map(|t| (t.name.clone(), t.count as f64))
        .collect();
    let b: Vec<(String, f64)> = candidate
        .timers
        .iter()
        .map(|t| (t.name.clone(), t.count as f64))
        .collect();
    for (name, base, cand) in union_names(&a, &b) {
        lines.push(DiffLine::check("timer.count", &name, base, cand, tol));
    }
    if !opts.ignore_timer_ns {
        let a: Vec<(String, f64)> = baseline
            .timers
            .iter()
            .map(|t| (t.name.clone(), t.total_ns as f64))
            .collect();
        let b: Vec<(String, f64)> = candidate
            .timers
            .iter()
            .map(|t| (t.name.clone(), t.total_ns as f64))
            .collect();
        for (name, base, cand) in union_names(&a, &b) {
            lines.push(DiffLine::check("timer.ns", &name, base, cand, tol));
        }
    }

    lines.push(DiffLine::check(
        "epoch.count",
        "epochs",
        baseline.epochs.len() as f64,
        candidate.epochs.len() as f64,
        tol,
    ));
    for (i, (be, ce)) in baseline.epochs.iter().zip(&candidate.epochs).enumerate() {
        let name = format!("epoch[{i}]");
        lines.push(DiffLine::check("epoch.loss", &name, be.loss, ce.loss, tol));
        lines.push(DiffLine::check(
            "epoch.train_accuracy",
            &name,
            be.train_accuracy,
            ce.train_accuracy,
            tol,
        ));
        lines.push(DiffLine::check(
            "epoch.test_accuracy",
            &name,
            be.test_accuracy,
            ce.test_accuracy,
            tol,
        ));
    }

    // Heatmaps: compare per-grid metric totals (cell-exact comparison
    // would drown the report; totals catch any systematic movement and
    // exact-tolerance gates still catch single-cell changes via totals
    // plus the counter lines).
    let metric_totals = |m: &RunManifest| -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for g in &m.heatmaps {
            out.push((format!("{}.cells", g.name), g.cells() as f64));
            for metric in fare_obs::HeatmapGrid::metric_names() {
                let total: f64 = g.metric(metric).unwrap_or_default().iter().sum();
                out.push((format!("{}.{metric}", g.name), total));
            }
        }
        out
    };
    for (name, base, cand) in union_names(&metric_totals(baseline), &metric_totals(candidate)) {
        lines.push(DiffLine::check("heatmap", &name, base, cand, tol));
    }

    let a: Vec<(String, f64)> = baseline
        .bench
        .iter()
        .map(|e| (e.name.clone(), e.value))
        .collect();
    let b: Vec<(String, f64)> = candidate
        .bench
        .iter()
        .map(|e| (e.name.clone(), e.value))
        .collect();
    for (name, base, cand) in union_names(&a, &b) {
        lines.push(DiffLine::check("bench", &name, base, cand, tol));
    }

    DiffReport { lines, notes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fare_obs::{BenchEntry, CounterEntry, EpochRecord};

    fn manifest(counters: &[(&str, u64)]) -> RunManifest {
        RunManifest {
            run: "t".into(),
            seed: 1,
            config: "{}".into(),
            counters: counters
                .iter()
                .map(|&(n, v)| CounterEntry {
                    name: n.into(),
                    value: v,
                })
                .collect(),
            timers: Vec::new(),
            epochs: Vec::new(),
            heatmaps: Vec::new(),
            bench: Vec::new(),
        }
    }

    #[test]
    fn identical_manifests_diff_clean() {
        let m = manifest(&[("a.b.c", 10), ("d.e.f", 0)]);
        let report = diff(&m, &m, &DiffOptions::default());
        assert!(report.ok());
        assert_eq!(report.regressions(), 0);
        assert!(report.notes.is_empty());
        assert!(report.to_markdown(true).contains("no differences"));
    }

    #[test]
    fn counter_missing_on_one_side_reads_as_zero() {
        let a = manifest(&[("a.b.c", 10)]);
        let b = manifest(&[("a.b.c", 10), ("x.y.z", 3)]);
        let report = diff(&a, &b, &DiffOptions::default());
        assert!(!report.ok());
        let line = report.lines.iter().find(|l| l.name == "x.y.z").unwrap();
        assert_eq!(line.baseline, 0.0);
        assert_eq!(line.candidate, 3.0);
        assert!(!line.within, "a new counter is a change");
        // And the zero-baseline percentage has no defined value.
        assert_eq!(line.rel_pct(), None);
        assert!(report.to_markdown(true).contains("(new)"));

        // Symmetric: dropped counter.
        let report = diff(&b, &a, &DiffOptions::default());
        let line = report.lines.iter().find(|l| l.name == "x.y.z").unwrap();
        assert_eq!((line.baseline, line.candidate), (3.0, 0.0));
        assert!(!line.within);
    }

    #[test]
    fn tolerance_boundary_is_inclusive() {
        let a = manifest(&[("a.b.c", 100)]);
        let b = manifest(&[("a.b.c", 110)]);
        // 10% change: exactly at tolerance passes…
        assert!(diff(
            &a,
            &b,
            &DiffOptions {
                tolerance: 0.10,
                ..DiffOptions::default()
            }
        )
        .ok());
        // …just below fails.
        assert!(!diff(
            &a,
            &b,
            &DiffOptions {
                tolerance: 0.0999,
                ..DiffOptions::default()
            }
        )
        .ok());
        // Zero tolerance demands exact equality.
        assert!(!diff(&a, &b, &DiffOptions::default()).ok());
        assert!(diff(&a, &a, &DiffOptions::default()).ok());
    }

    #[test]
    fn zero_baseline_fails_any_change_at_finite_tolerance() {
        let a = manifest(&[]);
        let b = manifest(&[("x.y.z", 1)]);
        let report = diff(
            &a,
            &b,
            &DiffOptions {
                tolerance: 1e9,
                ..DiffOptions::default()
            },
        );
        // |1 - 0| <= 1e9 * 0 is false: a zero baseline tolerates nothing.
        assert!(!report.ok());
    }

    #[test]
    fn epoch_curves_and_counts_are_compared() {
        let mut a = manifest(&[]);
        a.epochs.push(EpochRecord {
            epoch: 0,
            loss: 1.0,
            train_accuracy: 0.5,
            test_accuracy: 0.4,
        });
        let mut b = a.clone();
        b.epochs[0].test_accuracy = 0.41;
        let report = diff(&a, &b, &DiffOptions::default());
        assert_eq!(report.regressions(), 1);
        assert!(diff(
            &a,
            &b,
            &DiffOptions {
                tolerance: 0.05,
                ..DiffOptions::default()
            }
        )
        .ok());

        // Epoch-count mismatch is itself a regression.
        b.epochs.clear();
        let report = diff(&a, &b, &DiffOptions::default());
        assert!(report
            .lines
            .iter()
            .any(|l| l.kind == "epoch.count" && !l.within));
    }

    #[test]
    fn meta_mismatches_are_notes_not_regressions() {
        let a = manifest(&[]);
        let mut b = a.clone();
        b.seed = 2;
        b.run = "other".into();
        let report = diff(&a, &b, &DiffOptions::default());
        assert!(report.ok());
        assert_eq!(report.notes.len(), 2);
    }

    #[test]
    fn bench_values_are_compared_with_tolerance() {
        let mut a = manifest(&[]);
        a.bench.push(BenchEntry {
            name: "ns_per_iter".into(),
            value: 100.0,
        });
        let mut b = a.clone();
        b.bench[0].value = 104.0;
        assert!(!diff(&a, &b, &DiffOptions::default()).ok());
        assert!(diff(
            &a,
            &b,
            &DiffOptions {
                tolerance: 0.05,
                ..DiffOptions::default()
            }
        )
        .ok());
    }
}
