//! Manifest → markdown summary (`fare-report summarize`).

use fare_obs::RunManifest;

/// Render one manifest as markdown tables, plus derived quantities the
//  raw counters only imply (remap-cache hit rate, mean epoch time).
pub fn to_markdown(m: &RunManifest) -> String {
    let mut out = String::new();
    out.push_str(&format!("# Run manifest: `{}`\n\n", m.run));
    out.push_str(&format!("- seed: `{}`\n", m.seed));
    out.push_str(&format!("- config: `{}`\n", m.config));
    out.push_str(&format!(
        "- epochs recorded: {}\n\n",
        m.epochs.len()
    ));

    if !m.counters.is_empty() {
        out.push_str("## Counters\n\n| counter | value |\n|---|---:|\n");
        for c in &m.counters {
            out.push_str(&format!("| `{}` | {} |\n", c.name, c.value));
        }
        out.push('\n');
        let get = |name: &str| {
            m.counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
                .unwrap_or(0)
        };
        let hits = get("core.remap_cache.hits");
        let misses = get("core.remap_cache.misses");
        if hits + misses > 0 {
            out.push_str(&format!(
                "Derived: remap-cache hit rate {:.1}% ({hits} hits / {misses} misses)\n\n",
                100.0 * hits as f64 / (hits + misses) as f64
            ));
        }
    }

    if !m.timers.is_empty() {
        out.push_str("## Timers\n\n| timer | spans | total ms | mean ms |\n|---|---:|---:|---:|\n");
        for t in &m.timers {
            let total_ms = t.total_ns as f64 / 1e6;
            out.push_str(&format!(
                "| `{}` | {} | {:.3} | {:.3} |\n",
                t.name,
                t.count,
                total_ms,
                total_ms / t.count.max(1) as f64
            ));
        }
        out.push('\n');
    }

    if !m.epochs.is_empty() {
        out.push_str(
            "## Epoch curve\n\n| epoch | loss | train acc | test acc |\n|---:|---:|---:|---:|\n",
        );
        for e in &m.epochs {
            out.push_str(&format!(
                "| {} | {:.4} | {:.3} | {:.3} |\n",
                e.epoch, e.loss, e.train_accuracy, e.test_accuracy
            ));
        }
        out.push('\n');
    }

    if !m.heatmaps.is_empty() {
        out.push_str(
            "## Heatmaps\n\n| grid | cells | sa0 | sa1 | mismatch | mvms | energy (µJ) | hottest cell (faults) |\n|---|---:|---:|---:|---:|---:|---:|---:|\n",
        );
        for g in &m.heatmaps {
            let faults = g.metric("faults").unwrap_or_default();
            let hottest = faults
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
                .map(|(i, v)| format!("#{i} ({v})"))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "| `{}` | {} | {} | {} | {} | {} | {:.3} | {} |\n",
                g.name,
                g.cells(),
                g.sa0.iter().sum::<u64>(),
                g.sa1.iter().sum::<u64>(),
                g.mismatch.iter().sum::<u64>(),
                g.mvms.iter().sum::<u64>(),
                g.energy_nj.iter().sum::<f64>() / 1e3,
                hottest
            ));
        }
        out.push('\n');
    }

    if !m.bench.is_empty() {
        out.push_str("## Bench\n\n| name | value |\n|---|---:|\n");
        for b in &m.bench {
            out.push_str(&format!("| `{}` | {:.6} |\n", b.name, b.value));
        }
        out.push('\n');
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fare_obs::{CounterEntry, EpochRecord, HeatmapGrid, TimerEntry};

    #[test]
    fn summary_covers_every_section_and_derives_hit_rate() {
        let mut g = HeatmapGrid::zeros("adjacency_crossbars", 2);
        g.sa0 = vec![1, 0];
        g.sa1 = vec![0, 3];
        let m = RunManifest {
            run: "demo".into(),
            seed: 7,
            config: "{\"epochs\":5}".into(),
            counters: vec![
                CounterEntry {
                    name: "core.remap_cache.hits".into(),
                    value: 30,
                },
                CounterEntry {
                    name: "core.remap_cache.misses".into(),
                    value: 10,
                },
            ],
            timers: vec![TimerEntry {
                name: "core.trainer.run".into(),
                count: 1,
                total_ns: 5_000_000,
            }],
            epochs: vec![EpochRecord {
                epoch: 0,
                loss: 1.25,
                train_accuracy: 0.5,
                test_accuracy: 0.4,
            }],
            heatmaps: vec![g],
            bench: vec![],
        };
        let text = to_markdown(&m);
        assert!(text.contains("# Run manifest: `demo`"));
        assert!(text.contains("## Counters"));
        assert!(text.contains("hit rate 75.0%"));
        assert!(text.contains("## Timers"));
        assert!(text.contains("## Epoch curve"));
        assert!(text.contains("## Heatmaps"));
        assert!(text.contains("#1 (3)"), "hottest cell is index 1: {text}");
        assert_eq!(text, to_markdown(&m), "deterministic rendering");
    }
}
