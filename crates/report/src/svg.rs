//! A tiny deterministic SVG writer — just enough shapes for the
//! heatmap and figure renderers, so the workspace needs no plotting
//! dependency. All coordinates are formatted with fixed precision, so
//! the same input always renders byte-identical output.

/// Fixed-precision coordinate formatting (2 decimals).
fn c(v: f64) -> String {
    format!("{v:.2}")
}

/// Minimal XML text escaping.
pub fn escape(text: &str) -> String {
    text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// An SVG document under construction.
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
}

impl SvgDoc {
    pub fn new(width: f64, height: f64) -> SvgDoc {
        SvgDoc {
            width,
            height,
            body: String::new(),
        }
    }

    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) -> &mut Self {
        self.body.push_str(&format!(
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\"/>\n",
            c(x),
            c(y),
            c(w),
            c(h),
            fill
        ));
        self
    }

    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) -> &mut Self {
        self.body.push_str(&format!(
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{}\" stroke-width=\"{}\"/>\n",
            c(x1),
            c(y1),
            c(x2),
            c(y2),
            stroke,
            c(width)
        ));
        self
    }

    /// Polyline through `points`, no fill.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) -> &mut Self {
        let pts: Vec<String> = points
            .iter()
            .map(|&(x, y)| format!("{},{}", c(x), c(y)))
            .collect();
        self.body.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"{}\"/>\n",
            pts.join(" "),
            stroke,
            c(width)
        ));
        self
    }

    /// Text anchored per `anchor` (`start`/`middle`/`end`).
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, content: &str) -> &mut Self {
        self.body.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" font-size=\"{}\" font-family=\"sans-serif\" text-anchor=\"{}\">{}</text>\n",
            c(x),
            c(y),
            c(size),
            anchor,
            escape(content)
        ));
        self
    }

    /// Finish the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
             viewBox=\"0 0 {} {}\">\n<rect width=\"{}\" height=\"{}\" fill=\"white\"/>\n{}</svg>\n",
            c(self.width),
            c(self.height),
            c(self.width),
            c(self.height),
            c(self.width),
            c(self.height),
            self.body
        )
    }
}

/// The line-chart palette (stable order; cycles past the end).
pub const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

/// A blue→red heat colour for `t ∈ [0, 1]`.
pub fn heat_color(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    let r = (255.0 * t) as u8;
    let g = (64.0 * (1.0 - t)) as u8;
    let b = (255.0 * (1.0 - t)) as u8;
    format!("#{r:02x}{g:02x}{b:02x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_deterministic_well_formed_svg() {
        let render = || {
            let mut doc = SvgDoc::new(100.0, 50.0);
            doc.rect(0.0, 0.0, 10.0, 10.0, "#ff0000")
                .line(0.0, 0.0, 100.0, 50.0, "black", 1.0)
                .polyline(&[(0.0, 0.0), (5.0, 5.0)], PALETTE[0], 1.5)
                .text(50.0, 25.0, 10.0, "middle", "a<b & c");
            doc.finish()
        };
        let one = render();
        assert_eq!(one, render());
        assert!(one.starts_with("<svg "));
        assert!(one.ends_with("</svg>\n"));
        assert!(one.contains("a&lt;b &amp; c"));
        assert_eq!(one.matches('<').count(), one.matches('>').count());
    }

    #[test]
    fn heat_color_spans_blue_to_red() {
        assert_eq!(heat_color(0.0), "#0040ff");
        assert_eq!(heat_color(1.0), "#ff0000");
        assert!(heat_color(2.0) == heat_color(1.0));
    }
}
