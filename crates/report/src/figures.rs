//! Fig5-style epoch-curve figures: one SVG line chart over the
//! per-epoch metric curves of one or more manifests (e.g. the three
//! seeds of the paper-claims tests), rendered with the in-repo
//! [`svg`](crate::svg) writer.

use crate::svg::{SvgDoc, PALETTE};
use fare_obs::RunManifest;

/// Which epoch-curve metric to plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveMetric {
    Loss,
    TrainAccuracy,
    TestAccuracy,
}

impl CurveMetric {
    /// Parse a CLI name (`loss`, `train_accuracy`, `test_accuracy`).
    pub fn parse(name: &str) -> Option<CurveMetric> {
        match name {
            "loss" => Some(CurveMetric::Loss),
            "train_accuracy" => Some(CurveMetric::TrainAccuracy),
            "test_accuracy" => Some(CurveMetric::TestAccuracy),
            _ => None,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            CurveMetric::Loss => "loss",
            CurveMetric::TrainAccuracy => "train accuracy",
            CurveMetric::TestAccuracy => "test accuracy",
        }
    }

    fn value(&self, e: &fare_obs::EpochRecord) -> f64 {
        match self {
            CurveMetric::Loss => e.loss,
            CurveMetric::TrainAccuracy => e.train_accuracy,
            CurveMetric::TestAccuracy => e.test_accuracy,
        }
    }
}

const W: f64 = 640.0;
const H: f64 = 400.0;
const ML: f64 = 60.0; // left margin (y labels)
const MR: f64 = 20.0;
const MT: f64 = 30.0;
const MB: f64 = 70.0; // bottom margin (x labels + legend)

/// Render the epoch curves of `manifests` as one SVG line chart.
///
/// Accuracy metrics use a fixed `[0, 1]` y-range (the paper's Fig. 5
/// convention, making charts comparable across runs); loss auto-scales
/// from the data. Errors if no manifest has any epochs.
pub fn epoch_curves(manifests: &[RunManifest], metric: CurveMetric) -> Result<String, String> {
    let max_epochs = manifests.iter().map(|m| m.epochs.len()).max().unwrap_or(0);
    if max_epochs == 0 {
        return Err("no epoch records in any manifest".to_string());
    }

    let (y_min, y_max) = match metric {
        CurveMetric::Loss => {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for m in manifests {
                for e in &m.epochs {
                    lo = lo.min(metric.value(e));
                    hi = hi.max(metric.value(e));
                }
            }
            let pad = ((hi - lo) * 0.05).max(1e-9);
            (0.0f64.min(lo - pad), hi + pad)
        }
        _ => (0.0, 1.0),
    };

    let x_span = (max_epochs - 1).max(1) as f64;
    let px = |epoch: f64| ML + (W - ML - MR) * (epoch / x_span);
    let py = |v: f64| MT + (H - MT - MB) * (1.0 - (v - y_min) / (y_max - y_min));

    let mut doc = SvgDoc::new(W, H);
    doc.text(W / 2.0, 18.0, 13.0, "middle", &format!("{} per epoch", metric.label()));

    // Axes.
    doc.line(ML, MT, ML, H - MB, "#333333", 1.0);
    doc.line(ML, H - MB, W - MR, H - MB, "#333333", 1.0);
    // Y ticks: 5 divisions.
    for i in 0..=5 {
        let v = y_min + (y_max - y_min) * (i as f64) / 5.0;
        let y = py(v);
        doc.line(ML - 4.0, y, ML, y, "#333333", 1.0);
        doc.line(ML, y, W - MR, y, "#dddddd", 0.5);
        doc.text(ML - 8.0, y + 3.5, 10.0, "end", &format!("{v:.2}"));
    }
    // X ticks: at most 10.
    let step = (max_epochs / 10).max(1);
    for e in (0..max_epochs).step_by(step) {
        let x = px(e as f64);
        doc.line(x, H - MB, x, H - MB + 4.0, "#333333", 1.0);
        doc.text(x, H - MB + 16.0, 10.0, "middle", &format!("{e}"));
    }
    doc.text(W / 2.0, H - MB + 32.0, 11.0, "middle", "epoch");

    // Curves + legend.
    for (i, m) in manifests.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let points: Vec<(f64, f64)> = m
            .epochs
            .iter()
            .map(|e| (px(e.epoch as f64), py(metric.value(e))))
            .collect();
        if points.len() == 1 {
            let (x, y) = points[0];
            doc.rect(x - 1.5, y - 1.5, 3.0, 3.0, color);
        } else if !points.is_empty() {
            doc.polyline(&points, color, 1.8);
        }
        let lx = ML + 10.0 + (i as f64 % 3.0) * 190.0;
        let ly = H - 28.0 + (i as f64 / 3.0).floor() * 14.0;
        doc.line(lx, ly - 4.0, lx + 18.0, ly - 4.0, color, 2.0);
        let label = format!("{} (seed {})", m.run, m.seed);
        doc.text(lx + 24.0, ly, 10.0, "start", &label);
    }

    Ok(doc.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fare_obs::EpochRecord;

    fn manifest(run: &str, seed: u64, accs: &[f64]) -> RunManifest {
        RunManifest {
            run: run.into(),
            seed,
            config: "{}".into(),
            counters: Vec::new(),
            timers: Vec::new(),
            epochs: accs
                .iter()
                .enumerate()
                .map(|(i, &a)| EpochRecord {
                    epoch: i,
                    loss: 2.0 - a,
                    train_accuracy: a,
                    test_accuracy: a * 0.9,
                })
                .collect(),
            heatmaps: Vec::new(),
            bench: Vec::new(),
        }
    }

    #[test]
    fn renders_three_seed_fig5_curves_deterministically() {
        let ms = vec![
            manifest("fare", 7, &[0.2, 0.5, 0.7, 0.8]),
            manifest("fare", 11, &[0.25, 0.45, 0.65, 0.78]),
            manifest("fare", 13, &[0.22, 0.48, 0.69, 0.81]),
        ];
        let one = epoch_curves(&ms, CurveMetric::TestAccuracy).unwrap();
        let two = epoch_curves(&ms, CurveMetric::TestAccuracy).unwrap();
        assert_eq!(one, two);
        assert_eq!(one.matches("<polyline").count(), 3);
        assert!(one.contains("seed 11"));
        assert!(one.contains("test accuracy per epoch"));
    }

    #[test]
    fn loss_autoscales_and_accuracy_is_unit_range() {
        let ms = vec![manifest("r", 1, &[0.1, 0.9])];
        let loss = epoch_curves(&ms, CurveMetric::Loss).unwrap();
        let acc = epoch_curves(&ms, CurveMetric::TrainAccuracy).unwrap();
        assert!(acc.contains(">1.00<"), "accuracy axis pins 1.0");
        assert!(loss.contains("loss per epoch"));
    }

    #[test]
    fn empty_inputs_error() {
        assert!(epoch_curves(&[], CurveMetric::Loss).is_err());
        let m = manifest("r", 1, &[]);
        assert!(epoch_curves(&[m], CurveMetric::Loss).is_err());
    }

    #[test]
    fn metric_names_parse() {
        assert_eq!(CurveMetric::parse("loss"), Some(CurveMetric::Loss));
        assert_eq!(
            CurveMetric::parse("test_accuracy"),
            Some(CurveMetric::TestAccuracy)
        );
        assert_eq!(CurveMetric::parse("volts"), None);
    }
}
