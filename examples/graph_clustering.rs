//! Unsupervised graph clustering at the edge: train an encoder with the
//! self-supervised link objective through the faulty ReRAM pipeline,
//! k-means its embeddings, and score against the hidden communities.
//!
//! Run with: `cargo run --release --example graph_clustering`

use fare::core::clustering::run_graph_clustering;
use fare::core::{FaultStrategy, TrainConfig};
use fare::graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare::reram::FaultSpec;

fn main() {
    let seed = 42;
    let dataset = Dataset::generate(DatasetKind::Reddit, seed);
    println!(
        "Reddit preset: {} nodes, {} communities (labels used only for scoring)\n",
        dataset.graph.num_nodes(),
        dataset.num_classes
    );

    let base = TrainConfig {
        model: ModelKind::Gcn,
        epochs: 25,
        clip_threshold: 4.0, // wider clip window for the link objective
        ..TrainConfig::default()
    };

    let clean = run_graph_clustering(&base, seed, &dataset);
    println!(
        "fault-free hardware : purity {:.3}, NMI {:.3} (encoder AUC {:.3})",
        clean.purity, clean.nmi, clean.link_auc
    );

    for strategy in FaultStrategy::all() {
        let config = TrainConfig {
            fault_spec: FaultSpec::with_ratio(0.05, 1.0, 1.0),
            strategy,
            ..base
        };
        let out = run_graph_clustering(&config, seed, &dataset);
        println!(
            "{strategy:<20}: purity {:.3}, NMI {:.3} (5% faults, 1:1)",
            out.purity, out.nmi
        );
    }
    println!(
        "\nchance purity would be {:.3}; higher NMI = better community recovery",
        1.0 / dataset.num_classes as f64
    );
}
