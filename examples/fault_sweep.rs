//! Fault-density sweep: how each mitigation strategy degrades as the
//! stuck-at-fault density rises from 0 to 5 % — the scenario motivating
//! the paper's introduction (edge accelerators with imperfect ReRAM).
//!
//! Run with: `cargo run --release --example fault_sweep [-- --ratio 1:1]`

use fare::core::{run_fault_free, FaultStrategy, TrainConfig, Trainer};
use fare::graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare::reram::FaultSpec;

fn main() {
    let ratio_arg = std::env::args()
        .skip_while(|a| a != "--ratio")
        .nth(1)
        .unwrap_or_else(|| "9:1".into());
    let sa1_fraction = match ratio_arg.as_str() {
        "9:1" => 0.1,
        "1:1" => 0.5,
        other => {
            eprintln!("unknown ratio {other}, using 9:1");
            0.1
        }
    };

    let seed = 42;
    let dataset = Dataset::generate(DatasetKind::Amazon2M, seed);
    let base = TrainConfig {
        model: ModelKind::Sage,
        epochs: 25,
        ..TrainConfig::default()
    };

    let ideal = run_fault_free(&base, seed, &dataset);
    println!(
        "Amazon2M + SAGE, SA0:SA1 = {ratio_arg}; fault-free test accuracy {:.3}",
        ideal.final_test_accuracy
    );
    println!("{:>8} {:>14} {:>8} {:>10} {:>8}", "density", "fault-unaware", "NR", "clipping", "FARe");

    for density in [0.0, 0.01, 0.02, 0.03, 0.04, 0.05] {
        let mut row = format!("{:>7.0}%", density * 100.0);
        for strategy in FaultStrategy::all() {
            let config = TrainConfig {
                fault_spec: FaultSpec::with_sa1_fraction(density, sa1_fraction),
                strategy,
                ..base
            };
            let out = Trainer::new(config, seed).run(&dataset);
            let width = match strategy {
                FaultStrategy::FaultUnaware => 14,
                FaultStrategy::NeuronReordering => 8,
                FaultStrategy::ClippingOnly => 10,
                FaultStrategy::FaRe => 8,
            };
            row.push_str(&format!(" {:>w$.3}", out.final_test_accuracy, w = width));
        }
        println!("{row}");
    }
    println!();
    println!("Expected shape (paper Fig. 5): fault-unaware decays fastest; FARe stays near the fault-free line even at 5%.");
}
