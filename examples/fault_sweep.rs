//! Fault-density sweep: how each mitigation strategy degrades as the
//! stuck-at-fault density rises from 0 to 5 % — the scenario motivating
//! the paper's introduction (edge accelerators with imperfect ReRAM).
//!
//! Prints the accuracy-vs-density table, then the instrumented
//! [`fare::obs::RunManifest`] summary of the harshest FARe cell (5 %
//! density): faults injected per polarity, crossbars corrupted,
//! mappings solved and remap-cache traffic, instead of ad-hoc tallies.
//!
//! Run with: `cargo run --release --example fault_sweep [-- --ratio 1:1]`
//! (`-- --smoke` for the reduced verify.sh geometry)

use fare::core::{run_fault_free, FaultStrategy, TrainConfig, Trainer};
use fare::graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare::obs::{self, ClockMode, Mode};
use fare::reram::FaultSpec;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ratio_arg = std::env::args()
        .skip_while(|a| a != "--ratio")
        .nth(1)
        .unwrap_or_else(|| "9:1".into());
    let sa1_fraction = match ratio_arg.as_str() {
        "9:1" => 0.1,
        "1:1" => 0.5,
        other => {
            eprintln!("unknown ratio {other}, using 9:1");
            0.1
        }
    };
    obs::set_mode(Mode::Json);
    obs::set_clock(ClockMode::Fixed(1_000));

    let seed = 42;
    let (kind, epochs, densities): (_, _, &[f64]) = if smoke {
        (DatasetKind::Ppi, 4, &[0.0, 0.05])
    } else {
        (DatasetKind::Amazon2M, 25, &[0.0, 0.01, 0.02, 0.03, 0.04, 0.05])
    };
    let dataset = Dataset::generate(kind, seed);
    let base = TrainConfig {
        model: ModelKind::Sage,
        epochs,
        ..TrainConfig::default()
    };

    let ideal = run_fault_free(&base, seed, &dataset);
    println!(
        "{kind:?} + SAGE, SA0:SA1 = {ratio_arg}; fault-free test accuracy {:.3}",
        ideal.final_test_accuracy
    );
    println!("{:>8} {:>14} {:>8} {:>10} {:>8}", "density", "fault-unaware", "NR", "clipping", "FARe");

    let mut worst_fare_manifest = None;
    for &density in densities {
        let mut row = format!("{:>7.0}%", density * 100.0);
        for strategy in FaultStrategy::all() {
            let config = TrainConfig {
                fault_spec: FaultSpec::with_sa1_fraction(density, sa1_fraction),
                strategy,
                ..base
            };
            obs::reset();
            let out = Trainer::new(config, seed).run(&dataset);
            if strategy == FaultStrategy::FaRe && density == *densities.last().unwrap() {
                worst_fare_manifest = Some(
                    obs::RunManifest::capture(
                        &format!("fault_sweep/fare@{:.0}%", density * 100.0),
                        seed,
                        &config,
                    )
                    .with_bench("final_test_accuracy", out.final_test_accuracy)
                    .with_bench(
                        "accuracy_vs_fault_free",
                        out.final_test_accuracy - ideal.final_test_accuracy,
                    ),
                );
            }
            let width = match strategy {
                FaultStrategy::FaultUnaware => 14,
                FaultStrategy::NeuronReordering => 8,
                FaultStrategy::ClippingOnly => 10,
                FaultStrategy::FaRe => 8,
            };
            row.push_str(&format!(" {:>w$.3}", out.final_test_accuracy, w = width));
        }
        println!("{row}");
    }
    println!();
    if let Some(manifest) = worst_fare_manifest {
        println!("{}", manifest.summary());
    }
    println!("Expected shape (paper Fig. 5): fault-unaware decays fastest; FARe stays near the fault-free line even at 5%.");
}
