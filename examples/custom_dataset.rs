//! Running FARe on your own graph: write a small edge-list + label file,
//! load it with `fare_graph::io`, and train with and without faults.
//!
//! Replace the generated files with your own data in the same format:
//! `edges.txt` has one `u v` pair per line, `labels.txt` one integer
//! class per node, and optionally `features.txt` one float row per node.
//!
//! Run with: `cargo run --release --example custom_dataset`

use fare::core::{run_fault_free, FaultStrategy, TrainConfig, Trainer};
use fare::graph::generate;
use fare::graph::io::load_dataset;
use fare::reram::FaultSpec;
use fare_rt::rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Write a demo dataset to disk (stand-in for your real files).
    let dir = std::env::temp_dir().join("fare_custom_dataset_demo");
    std::fs::create_dir_all(&dir)?;
    let edges_path = dir.join("edges.txt");
    let labels_path = dir.join("labels.txt");
    {
        let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(7);
        let (graph, labels) = generate::sbm(300, 4, 0.15, 0.01, &mut rng);
        let mut edges_text = String::from("# u v\n");
        for (u, v) in graph.edges() {
            edges_text.push_str(&format!("{u} {v}\n"));
        }
        std::fs::write(&edges_path, edges_text)?;
        let labels_text: String = labels.iter().map(|l| format!("{l}\n")).collect();
        std::fs::write(&labels_path, labels_text)?;
    }
    println!("wrote demo dataset to {}", dir.display());

    // 2. Load it back (features synthesised from graph structure since we
    //    provide none).
    let dataset = load_dataset(&edges_path, &labels_path, None, 12, 3, 7)?;
    println!(
        "loaded: {} nodes, {} edges, {} classes, {}-dim features\n",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes,
        dataset.features.cols()
    );

    // 3. Train on ideal vs faulty hardware.
    let base = TrainConfig {
        epochs: 20,
        fault_spec: FaultSpec::with_ratio(0.05, 1.0, 1.0),
        ..TrainConfig::default()
    };
    let ideal = run_fault_free(&base, 7, &dataset);
    println!("fault-free   : test accuracy {:.3}", ideal.final_test_accuracy);
    for strategy in [FaultStrategy::FaultUnaware, FaultStrategy::FaRe] {
        let out = Trainer::new(TrainConfig { strategy, ..base }, 7).run(&dataset);
        println!("{strategy:<13}: test accuracy {:.3} (5% faults, 1:1)", out.final_test_accuracy);
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
