//! Post-deployment fault endurance: faults keep appearing *while the
//! model trains* (ReRAM write wear-out), and FARe's per-epoch BIST +
//! row-permutation refresh absorbs them — the paper's Fig. 6 scenario.
//!
//! Starts from 2 % pre-deployment faults and adds 1 % more, spread
//! uniformly over the epochs, then prints the per-epoch test-accuracy
//! trajectory of each strategy.
//!
//! Run with: `cargo run --release --example post_deployment`

use fare::core::{run_fault_free, FaultStrategy, TrainConfig, Trainer};
use fare::graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare::reram::FaultSpec;

fn main() {
    let seed = 7;
    let epochs = 25;
    let dataset = Dataset::generate(DatasetKind::Reddit, seed);
    let base = TrainConfig {
        model: ModelKind::Gcn,
        epochs,
        fault_spec: FaultSpec::with_ratio(0.02, 1.0, 1.0),
        post_deployment_density: 0.01,
        ..TrainConfig::default()
    };

    println!("Reddit + GCN, 2% pre-deployment + 1% post-deployment faults (SA0:SA1 = 1:1)\n");

    let ideal = run_fault_free(&base, seed, &dataset);
    let outcomes: Vec<_> = FaultStrategy::all()
        .iter()
        .map(|&s| {
            let out = Trainer::new(TrainConfig { strategy: s, ..base }, seed).run(&dataset);
            (s, out)
        })
        .collect();

    println!(
        "{:>5} {:>11} {:>14} {:>8} {:>10} {:>8}",
        "epoch", "fault-free", "fault-unaware", "NR", "clipping", "FARe"
    );
    for e in 0..epochs {
        let mut row = format!("{e:>5} {:>11.3}", ideal.history[e].test_accuracy);
        for (s, out) in &outcomes {
            let width = match s {
                FaultStrategy::FaultUnaware => 14,
                FaultStrategy::NeuronReordering => 8,
                FaultStrategy::ClippingOnly => 10,
                FaultStrategy::FaRe => 8,
            };
            row.push_str(&format!(" {:>w$.3}", out.history[e].test_accuracy, w = width));
        }
        println!("{row}");
    }

    println!();
    for (s, out) in &outcomes {
        println!(
            "{s:<14} final accuracy {:.3} (loss vs fault-free {:+.1} pp)",
            out.final_test_accuracy,
            100.0 * (out.final_test_accuracy - ideal.final_test_accuracy)
        );
    }
    println!("\n(paper Fig. 6: FARe loses at most ~1.9 pp even with growing faults; NR loses up to ~15 pp)");
}
