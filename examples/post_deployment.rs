//! Post-deployment fault endurance: faults keep appearing *while the
//! model trains* (ReRAM write wear-out), and FARe's per-epoch BIST +
//! row-permutation refresh absorbs them — the paper's Fig. 6 scenario.
//!
//! Starts from 2 % pre-deployment faults and adds 1 % more, spread
//! uniformly over the epochs, prints the per-epoch test-accuracy
//! trajectory of each strategy, then prints each strategy's
//! [`fare::obs::RunManifest`] summary — the instrumented ground truth of
//! what the run actually did (faults injected, crossbars corrupted,
//! remap-cache hits/misses, epochs/batches executed) instead of ad-hoc
//! tallies.
//!
//! Run with: `cargo run --release --example post_deployment`
//! (`-- --smoke` for the reduced verify.sh geometry)

use fare::core::{run_fault_free, FaultStrategy, TrainConfig, Trainer};
use fare::graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare::obs::{self, ClockMode, Mode};
use fare::reram::FaultSpec;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Record counters for the manifests; the fixed clock keeps the
    // printed timer lines reproducible run-to-run.
    obs::set_mode(Mode::Json);
    obs::set_clock(ClockMode::Fixed(1_000));

    let seed = 7;
    let (kind, epochs) = if smoke {
        (DatasetKind::Ppi, 4)
    } else {
        (DatasetKind::Reddit, 25)
    };
    let dataset = Dataset::generate(kind, seed);
    let base = TrainConfig {
        model: ModelKind::Gcn,
        epochs,
        fault_spec: FaultSpec::with_ratio(0.02, 1.0, 1.0),
        post_deployment_density: 0.01,
        ..TrainConfig::default()
    };

    println!(
        "{kind:?} + GCN, 2% pre-deployment + 1% post-deployment faults (SA0:SA1 = 1:1)\n"
    );

    let ideal = run_fault_free(&base, seed, &dataset);
    let outcomes: Vec<_> = FaultStrategy::all()
        .iter()
        .map(|&s| {
            let config = TrainConfig { strategy: s, ..base };
            obs::reset();
            let out = Trainer::new(config, seed).run(&dataset);
            let manifest = obs::RunManifest::capture(&format!("post_deployment/{s}"), seed, &config)
                .with_bench("final_test_accuracy", out.final_test_accuracy)
                .with_bench(
                    "accuracy_vs_fault_free",
                    out.final_test_accuracy - ideal.final_test_accuracy,
                );
            (s, out, manifest)
        })
        .collect();

    println!(
        "{:>5} {:>11} {:>14} {:>8} {:>10} {:>8}",
        "epoch", "fault-free", "fault-unaware", "NR", "clipping", "FARe"
    );
    for e in 0..epochs {
        let mut row = format!("{e:>5} {:>11.3}", ideal.history[e].test_accuracy);
        for (s, out, _) in &outcomes {
            let width = match s {
                FaultStrategy::FaultUnaware => 14,
                FaultStrategy::NeuronReordering => 8,
                FaultStrategy::ClippingOnly => 10,
                FaultStrategy::FaRe => 8,
            };
            row.push_str(&format!(" {:>w$.3}", out.history[e].test_accuracy, w = width));
        }
        println!("{row}");
    }

    println!();
    for (_, _, manifest) in &outcomes {
        println!("{}", manifest.summary());
    }
    println!("(paper Fig. 6: FARe loses at most ~1.9 pp even with growing faults; NR loses up to ~15 pp)");
}
