//! Quickstart: train a GCN on the PPI preset with 5 % stuck-at faults,
//! with and without FARe, and compare against fault-free training.
//!
//! Run with: `cargo run --release --example quickstart`

use fare::core::{run_fault_free, FaultStrategy, TrainConfig, Trainer};
use fare::graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare::reram::FaultSpec;

fn main() {
    let seed = 42;
    let dataset = Dataset::generate(DatasetKind::Ppi, seed);
    println!(
        "dataset: {} ({} nodes, {} edges, {} classes)",
        dataset.spec.name,
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes
    );

    let base = TrainConfig {
        model: ModelKind::Gcn,
        epochs: 30,
        fault_spec: FaultSpec::density(0.05),
        ..TrainConfig::default()
    };

    let ideal = run_fault_free(&base, seed, &dataset);
    println!("fault-free      : test accuracy {:.3}", ideal.final_test_accuracy);

    for strategy in FaultStrategy::all() {
        let config = TrainConfig { strategy, ..base };
        let out = Trainer::new(config, seed).run(&dataset);
        println!(
            "{strategy:<16}: test accuracy {:.3} (normalised time {:.3})",
            out.final_test_accuracy, out.normalized_time
        );
    }
}
