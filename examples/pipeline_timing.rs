//! Explores the pipelined execution-time model behind Fig. 7: how the
//! overhead of each fault-mitigation scheme scales with the number of
//! subgraph batches `N` (pipeline depth is `N + S − 1`), and exports
//! the schedule as Chrome traces — one *modeled* (the discrete-event
//! [`fare::reram::pipeline::Schedule`] laid out slot by slot, one trace
//! track per pipeline stage) and one *measured* (the golden workload
//! run under `FARE_OBS=trace`) — so the analytical picture and the real
//! instrumented run can be compared side by side in `chrome://tracing`
//! or ui.perfetto.dev.
//!
//! Run with: `cargo run --release --example pipeline_timing [--smoke]`
//!
//! `--smoke` shrinks the modeled schedule and keeps everything else;
//! traces land in `target/pipeline_timing/`.

use fare::obs::trace::{Phase, TraceEvent, TraceLog};
use fare::reram::pipeline::Schedule;
use fare::reram::timing::{PipelineSpec, TimingModel};

/// Lays the FARe schedule out as explicit-timestamp span events, one
/// Chrome track per pipeline stage: batch `b` occupies stage `s` during
/// cycle `issue(b) + s`, with the same front-end issue/stall logic as
/// [`fare::reram::pipeline::simulate`].
fn modeled_trace(schedule: &Schedule, cycle_ns: u64) -> TraceLog {
    let mut events = Vec::new();
    let mut epoch_start = 0usize;
    for epoch in 0..schedule.epochs {
        let mut issue = Vec::with_capacity(schedule.batches);
        let mut t = 0usize;
        for b in 0..schedule.batches {
            issue.push(t);
            t += 1;
            if schedule.stall_after_batch > 0 && b + 1 < schedule.batches {
                t += schedule.stall_after_batch;
            }
        }
        let drain = issue.last().expect("batches > 0") + schedule.stages;
        for (b, &at) in issue.iter().enumerate() {
            for s in 0..schedule.stages {
                let begin = (epoch_start + at + s) as u64 * cycle_ns;
                let name = format!("pipe.epoch{epoch}.batch{b}");
                events.push(TraceEvent {
                    name: name.clone(),
                    ph: Phase::B,
                    ts_ns: begin,
                    track: s as u64,
                    arg: Some(b as u64),
                });
                events.push(TraceEvent {
                    name,
                    ph: Phase::E,
                    ts_ns: begin + cycle_ns,
                    track: s as u64,
                    arg: None,
                });
            }
        }
        epoch_start += drain + schedule.epoch_service;
    }
    // Chrome wants each track's events time-ordered with ends before
    // same-timestamp begins.
    events.sort_by_key(|e| (e.ts_ns, e.ph == Phase::B));
    TraceLog::from_events(cycle_ns, events)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    println!("Normalised execution time vs pipeline length (S = 5 stages, 100 epochs)\n");
    println!(
        "{:>8} {:>11} {:>10} {:>8} {:>8} {:>22}",
        "batches", "fault-free", "clipping", "FARe", "NR", "FARe speedup over NR"
    );
    let sweep: &[usize] = if smoke {
        &[10, 100, 1000]
    } else {
        &[10, 50, 100, 500, 1000, 5000]
    };
    for &n in sweep {
        let model = TimingModel::new(PipelineSpec::new(n, 5, 1e-3, 100));
        let t = model.normalized();
        println!(
            "{n:>8} {:>11.3} {:>10.3} {:>8.3} {:>8.3} {:>21.2}x",
            t.fault_free,
            t.clipping,
            t.fare,
            t.neuron_reordering,
            t.fare_speedup_over_nr()
        );
    }

    println!();
    println!("Two asymptotics the paper calls out:");
    println!("- the clipping stage amortises away as N grows (N >> S), so FARe's");
    println!("  overhead converges to its ~1% preprocessing + 0.13% BIST charges;");
    println!("- NR's per-batch stall scales *with* N, so its overhead saturates");
    println!("  near 1 + stall/1 ≈ 4x, which is where FARe's 'up to 4x speedup'");
    println!("  comes from.");

    println!();
    println!("Absolute (un-normalised) times for the Table II datasets:");
    for kind in fare::graph::datasets::DatasetKind::all() {
        let spec = kind.spec();
        let n = (spec.paper_partitions / spec.paper_batch).max(1);
        let model = TimingModel::new(PipelineSpec::new(n, 5, 1e-3, 100));
        println!(
            "  {:<9} N={n:>4}: fault-free {:.2} s, FARe {:.2} s, NR {:.2} s",
            spec.name,
            model.fault_free(),
            model.fare(),
            model.neuron_reordering()
        );
    }

    // Chrome-trace exports: the modeled FARe schedule (clipping stage +
    // per-epoch BIST service) next to the measured golden-workload run.
    let out_dir = "target/pipeline_timing";
    std::fs::create_dir_all(out_dir).expect("create trace output dir");

    let (batches, epochs) = if smoke { (10, 2) } else { (50, 3) };
    let schedule = Schedule::new(batches, 5 + 1, epochs).with_epoch_service(2);
    let modeled = modeled_trace(&schedule, 1_000_000); // 1 ms stage delay
    let modeled_path = format!("{out_dir}/pipeline_modeled.trace.json");
    std::fs::write(&modeled_path, modeled.to_chrome()).expect("write modeled trace");
    println!();
    println!(
        "modeled schedule: N={batches} S={} E={epochs} -> {} span events, {}",
        schedule.stages,
        modeled.events.len() / 2,
        modeled_path
    );

    let (_, measured) = fare::golden::capture_trace();
    let measured_path = format!("{out_dir}/pipeline_measured.trace.json");
    std::fs::write(&measured_path, measured.to_chrome()).expect("write measured trace");
    println!(
        "measured golden run: {} span events ({} dropped), {}",
        measured.events.len(),
        measured.dropped,
        measured_path
    );
    println!("open both in chrome://tracing or ui.perfetto.dev to compare");
}
