//! Explores the pipelined execution-time model behind Fig. 7: how the
//! overhead of each fault-mitigation scheme scales with the number of
//! subgraph batches `N` (pipeline depth is `N + S − 1`).
//!
//! Run with: `cargo run --release --example pipeline_timing`

use fare::reram::timing::{PipelineSpec, TimingModel};

fn main() {
    println!("Normalised execution time vs pipeline length (S = 5 stages, 100 epochs)\n");
    println!(
        "{:>8} {:>11} {:>10} {:>8} {:>8} {:>22}",
        "batches", "fault-free", "clipping", "FARe", "NR", "FARe speedup over NR"
    );
    for n in [10usize, 50, 100, 500, 1000, 5000] {
        let model = TimingModel::new(PipelineSpec::new(n, 5, 1e-3, 100));
        let t = model.normalized();
        println!(
            "{n:>8} {:>11.3} {:>10.3} {:>8.3} {:>8.3} {:>21.2}x",
            t.fault_free,
            t.clipping,
            t.fare,
            t.neuron_reordering,
            t.fare_speedup_over_nr()
        );
    }

    println!();
    println!("Two asymptotics the paper calls out:");
    println!("- the clipping stage amortises away as N grows (N >> S), so FARe's");
    println!("  overhead converges to its ~1% preprocessing + 0.13% BIST charges;");
    println!("- NR's per-batch stall scales *with* N, so its overhead saturates");
    println!("  near 1 + stall/1 ≈ 4x, which is where FARe's 'up to 4x speedup'");
    println!("  comes from.");

    println!();
    println!("Absolute (un-normalised) times for the Table II datasets:");
    for kind in fare::graph::datasets::DatasetKind::all() {
        let spec = kind.spec();
        let n = (spec.paper_partitions / spec.paper_batch).max(1);
        let model = TimingModel::new(PipelineSpec::new(n, 5, 1e-3, 100));
        println!(
            "  {:<9} N={n:>4}: fault-free {:.2} s, FARe {:.2} s, NR {:.2} s",
            spec.name,
            model.fault_free(),
            model.fare(),
            model.neuron_reordering()
        );
    }
}
