//! A tour of the simulated ReRAM hardware: program a crossbar, inject
//! faults, scan them with BIST, run an analog MVM through the faulty
//! fabric, and price the accelerator in area/power/energy.
//!
//! Run with: `cargo run --release --example hardware_tour`

use fare::reram::energy::{estimate, overprovisioning_cost};
use fare::reram::mvm::{crossbar_mvm, mvm_latency_s};
use fare::reram::timing::PipelineSpec;
use fare::reram::weights::WeightFabric;
use fare::reram::{Bist, ChipConfig, CrossbarArray, FaultSpec};
use fare::tensor::{FixedFormat, Matrix};
use fare_rt::rand::SeedableRng;

fn main() {
    let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(2024);
    let cfg = ChipConfig::date2024();
    println!(
        "chip: {}x{} crossbars, {} per tile, {} MHz, {}-bit cells",
        cfg.crossbar_size,
        cfg.crossbar_size,
        cfg.crossbars_per_tile,
        cfg.frequency_hz / 1e6,
        cfg.bits_per_cell
    );

    // 1. A crossbar pool with 3% clustered stuck-at faults (9:1).
    let mut array = CrossbarArray::new(12, 32);
    array.inject(&FaultSpec::with_ratio(0.03, 9.0, 1.0), &mut rng);
    println!(
        "\ninjected faults: {} total ({} SA0 / {} SA1), density {:.2}%",
        array.fault_count(),
        array.sa0_count(),
        array.sa1_count(),
        100.0 * array.fault_density()
    );
    let counts: Vec<usize> = array.iter().map(|x| x.fault_count()).collect();
    println!("per-crossbar fault counts (Poisson clustering): {counts:?}");

    // 2. BIST scan: what the mapping algorithm actually sees.
    let map = Bist::scan(&array);
    println!(
        "BIST scan: {} faults detected across {} crossbars ({:.2}% time overhead per scan)",
        map.fault_count(),
        map.num_crossbars(),
        100.0 * Bist::time_overhead_fraction()
    );

    // 3. Weight fabric + analog MVM through the faults.
    let mut fabric = WeightFabric::for_shape(32, 8, 32, FixedFormat::default());
    fabric.inject(&FaultSpec::with_ratio(0.03, 9.0, 1.0), &mut rng);
    let w = Matrix::from_fn(32, 8, |r, c| ((r * 8 + c) as f32 * 0.41).sin() * 0.3);
    let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.2).cos()).collect();
    let y = crossbar_mvm(&fabric, &w, &x);
    let exact: Vec<f32> = (0..8)
        .map(|c| (0..32).map(|r| w[(r, c)] * x[r]).sum())
        .collect();
    println!("\nanalog MVM vs exact product (first 4 columns):");
    #[allow(clippy::needless_range_loop)] // paired indexing into two vectors
    for c in 0..4 {
        println!(
            "  col {c}: hardware {:+.4}  exact {:+.4}  (|err| {:.4})",
            y.output[c],
            exact[c],
            (y.output[c] - exact[c]).abs()
        );
    }
    println!(
        "MVM cost: {} cycles = {:.1} µs at {} MHz",
        y.cycles,
        1e6 * mvm_latency_s(&fabric, cfg.frequency_hz),
        cfg.frequency_hz / 1e6
    );

    // 4. Area/power/energy of a training run.
    let pipeline = PipelineSpec::new(150, 5, 1e-3, 100);
    let report = estimate(&cfg, 96, &pipeline);
    println!(
        "\ntraining on {} tile(s): {:.3} mm², {:.2} W, {:.2} s -> {:.2} J",
        report.tiles, report.area_mm2, report.power_w, report.exec_time_s, report.energy_j
    );
    let (_, provisioned, ratio) = overprovisioning_cost(&cfg, 96, 1.5, &pipeline);
    println!(
        "FARe's 1.5x crossbar slack: {} tile(s), {:.2}x area (tile-granular)",
        provisioned.tiles, ratio
    );
}
