//! Link prediction at the edge: one of the three applications the
//! paper's introduction motivates (Ogbl-citation2 is a link-prediction
//! benchmark in its original form).
//!
//! Trains a GraphSAGE encoder with a dot-product edge decoder through the
//! faulty ReRAM pipeline and compares held-out AUC with and without FARe.
//!
//! Note: on stochastic-block-model graphs an intra-community non-edge is
//! statistically indistinguishable from a held-out edge, so attainable
//! AUC is capped well below 1.0 — what matters is the gap to the 0.5
//! chance line and between strategies.
//!
//! Run with: `cargo run --release --example link_prediction`

use fare::core::link_prediction::run_link_prediction;
use fare::core::{FaultStrategy, TrainConfig};
use fare::graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare::reram::FaultSpec;

fn main() {
    let seed = 42;
    let dataset = Dataset::generate(DatasetKind::Ogbl, seed);
    println!(
        "Ogbl preset: {} nodes, {} edges; task: predict held-out edges\n",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges()
    );

    // θ is task-dependent: the dot-product decoder legitimately grows
    // weights past the classification default of 1.
    let base = TrainConfig {
        model: ModelKind::Sage,
        epochs: 25,
        clip_threshold: 4.0,
        ..TrainConfig::default()
    };

    let clean = run_link_prediction(&base, seed, &dataset);
    println!(
        "fault-free hardware : AUC {:.3} over {} held-out edges",
        clean.final_auc, clean.test_edges
    );

    for strategy in FaultStrategy::all() {
        let config = TrainConfig {
            fault_spec: FaultSpec::with_ratio(0.05, 1.0, 1.0),
            strategy,
            ..base
        };
        let out = run_link_prediction(&config, seed, &dataset);
        println!("{strategy:<20}: AUC {:.3} (5% faults, SA0:SA1 = 1:1)", out.final_auc);
    }
}
